"""Forged, replayed, and stolen-key command injection (E21 threat family).

The sec VI-C watchdog's authority travels over the same network the
attacker lives on.  Three escalating abuses of that authority:

* :class:`ForgedKillOrder` — the attacker crafts ``safety.kill`` orders
  from whole cloth (no key, garbage MAC) and aims them at healthy
  devices.  An unsigned fleet executes them — the fail-closed machinery
  turned into a weapon; a signed fleet rejects them at the gateway
  (``bad-mac``).
* :class:`ReplayedKillOrder` — the attacker taps the wire, captures
  *genuine* kill orders, and re-sends them: re-addressed at healthy
  devices, and verbatim at the original target.  Unsigned fleets execute
  the re-addressed copy; signed fleets reject it (``target-mismatch``,
  or ``replayed``/``stale`` for verbatim copies).
* :class:`StolenKeyRogue` — the attacker exfiltrates the watchdog's
  signing key (:meth:`~repro.crypto.keyring.Keyring.steal`) and mints
  *valid* envelopes.  Crypto alone cannot stop this; containment falls
  to the :class:`~repro.safeguards.gateway.ActuationGateway`'s
  per-issuer budget and global freeze.

None of these mark devices as *compromised* in the attack record: their
victims are healthy devices wrongly killed, which must not count toward
skynet formation (that scoring means "running rogue logic").  Victim ids
land in ``record.detail`` instead, and scenarios score them as
``healthy_killed``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.attacks.injector import Attack, AttackRecord
from repro.crypto.envelope import TRANSPORT_KEYS, signed_body
from repro.safeguards.deactivation import KILL_TOPIC, safety_address
from repro.sim.simulator import Simulator
from repro.types import DeviceStatus, ThreatChannel


def _active_victims(devices: dict, avoid: Optional[Callable[[], set]],
                    exclude: set) -> list[str]:
    """Deterministic healthy-victim pool: active, not excluded, not in
    ``avoid()`` (typically the injector's compromised-ever set)."""
    avoided = set(avoid()) if avoid is not None else set()
    return [
        device_id for device_id in sorted(devices)
        if devices[device_id].status != DeviceStatus.DEACTIVATED
        and device_id not in avoided and device_id not in exclude
    ]


class ForgedKillOrder(Attack):
    """Craft kill orders from nothing and aim them at healthy devices."""

    name = "forged-kill"
    channel = ThreatChannel.CYBER_ATTACK

    def __init__(self, network, devices: dict, victims: int = 2,
                 issuer: str = "watchdog", address: str = "red.forger",
                 rounds: int = 3, interval: float = 1.0,
                 avoid: Optional[Callable[[], set]] = None):
        """``victims`` healthy devices are each sent a forged order per
        round, ``rounds`` rounds spaced ``interval`` apart.  The forgery
        carries envelope-shaped fields with a garbage MAC, so it exercises
        the ``bad-mac`` rejection path on signed fleets while remaining a
        perfectly effective kill on unsigned ones (which only read
        ``cause``)."""
        self.network = network
        self.devices = devices
        self.victims = victims
        self.issuer = issuer
        self.address = address
        self.rounds = rounds
        self.interval = interval
        self.avoid = avoid
        self._nonce = 0

    def launch(self, sim: Simulator, record: AttackRecord) -> None:
        # Join the topology so the fleet routes our datagrams.
        self.network.register(self.address, lambda message: None)
        record.detail["victims"] = []
        record.detail["orders_sent"] = 0
        self._round(sim, record, self.rounds)

    def _round(self, sim: Simulator, record: AttackRecord,
               remaining: int) -> None:
        if remaining <= 0:
            return
        targets = _active_victims(self.devices, self.avoid,
                                  exclude=set())[: self.victims]
        for device_id in targets:
            self._nonce += 1
            body = {
                "cause": "forged", "target": device_id,
                "_issuer": self.issuer,
                "_nonce": f"forged:{self._nonce}",
                "_tick": sim.now,
                "_mac": "0" * 64,
            }
            self.network.send(self.address, safety_address(device_id),
                              KILL_TOPIC, body)
            if device_id not in record.detail["victims"]:
                record.detail["victims"].append(device_id)
            record.detail["orders_sent"] += 1
            sim.metrics.counter("attacks.forged_orders").inc()
        sim.record("attack.forged_kill", self.address, targets=targets)
        sim.schedule(self.interval, self._round, sim, record, remaining - 1,
                     label="attack:forged-kill")


class ReplayedKillOrder(Attack):
    """Capture genuine kill orders off the wire and re-send them."""

    name = "replay-kill"
    channel = ThreatChannel.CYBER_ATTACK

    def __init__(self, network, devices: dict, address: str = "red.replayer",
                 delay: float = 1.0, max_replays: int = 8,
                 avoid: Optional[Callable[[], set]] = None):
        """Each captured ``safety.kill`` body is re-sent ``delay`` after
        capture (inside the verifier window, so the nonce cache — not
        staleness — is what a signed fleet's defence rests on): once
        re-addressed at a healthy device, once verbatim at the original
        target.  Transport retry metadata is stripped from the capture,
        exactly as a datagram-level attacker would replay it."""
        self.network = network
        self.devices = devices
        self.address = address
        self.delay = delay
        self.max_replays = max_replays
        self.avoid = avoid

    def launch(self, sim: Simulator, record: AttackRecord) -> None:
        self.network.register(self.address, lambda message: None)
        record.detail["captured"] = 0
        record.detail["replays_sent"] = 0
        record.detail["victims"] = []

        def capture(message) -> None:
            if message.topic != KILL_TOPIC:
                return
            if message.sender == self.address:
                return                      # don't capture our own replays
            if record.detail["captured"] >= self.max_replays:
                return
            record.detail["captured"] += 1
            body = {key: value for key, value in message.body.items()
                    if key not in TRANSPORT_KEYS}
            sim.schedule(self.delay, self._replay, sim, record,
                         dict(body), message.recipient,
                         label="attack:replay-kill")

        self.network.tap(capture)

    def _replay(self, sim: Simulator, record: AttackRecord,
                body: dict, original_recipient: str) -> None:
        original_target = body.get("target")
        victims = _active_victims(
            self.devices, self.avoid,
            exclude={original_target} if original_target else set(),
        )
        if victims:
            victim = victims[0]
            # The body rides verbatim — tampering with the signed target
            # would just break the MAC.  Unsigned fleets never look at it,
            # so delivery address alone re-aims the kill; signed fleets
            # catch exactly this at the gateway's target binding.
            self.network.send(self.address, safety_address(victim),
                              KILL_TOPIC, dict(body))
            if victim not in record.detail["victims"]:
                record.detail["victims"].append(victim)
            record.detail["replays_sent"] += 1
            sim.metrics.counter("attacks.replayed_orders").inc()
        # Verbatim replay at the original target: consumed-nonce territory.
        self.network.send(self.address, original_recipient, KILL_TOPIC,
                          dict(body))
        record.detail["replays_sent"] += 1
        sim.metrics.counter("attacks.replayed_orders").inc()
        sim.record("attack.replay_kill", self.address,
                   original=original_recipient,
                   victim=victims[0] if victims else None)


class StolenKeyRogue(Attack):
    """Sign kill orders with an exfiltrated watchdog key."""

    name = "stolen-key"
    channel = ThreatChannel.CYBER_ATTACK

    def __init__(self, network, devices: dict, keyring,
                 issuer: str = "watchdog", address: str = "red.rogue",
                 interval: float = 1.0, max_orders: int = 12,
                 avoid: Optional[Callable[[], set]] = None):
        """Every ``interval`` the rogue signs a fresh, perfectly valid
        kill order for the next healthy device and sends it.  The crypto
        layer cannot tell these from the watchdog's own orders — they
        share the issuer's budget at the gateway, which is the containment
        mechanism under test (budget exhaustion trips the global freeze).
        ``max_orders`` bounds the spray."""
        self.network = network
        self.devices = devices
        self.keyring = keyring
        self.issuer = issuer
        self.address = address
        self.interval = interval
        self.max_orders = max_orders
        self.avoid = avoid
        self._key: Optional[bytes] = None
        self._nonce = 0

    def launch(self, sim: Simulator, record: AttackRecord) -> None:
        self.network.register(self.address, lambda message: None)
        self._key = self.keyring.steal(self.issuer)
        record.detail["orders_sent"] = 0
        record.detail["victims"] = []
        sim.record("attack.key_stolen", self.address, issuer=self.issuer)
        self._spray(sim, record)

    def _spray(self, sim: Simulator, record: AttackRecord) -> None:
        if record.detail["orders_sent"] >= self.max_orders:
            return
        victims = _active_victims(self.devices, self.avoid,
                                  exclude=set(record.detail["victims"]))
        if victims:
            victim = victims[0]
            self._nonce += 1
            body = signed_body(
                self._key, self.issuer,
                {"cause": "stolen-key", "target": victim},
                nonce=f"stolen:{self._nonce}", tick=sim.now,
            )
            self.network.send(self.address, safety_address(victim),
                              KILL_TOPIC, body)
            record.detail["orders_sent"] += 1
            record.detail["victims"].append(victim)
            sim.metrics.counter("attacks.stolen_key_orders").inc()
        sim.schedule(self.interval, self._spray, sim, record,
                     label="attack:stolen-key")
