"""Training-data poisoning campaigns (paper sec IV, adversarial ML).

"Attacks in this area include attempts to poison data used for training,
obfuscating features of data used for training, denying access to selected
sets of data".  A :class:`PoisoningCampaign` transforms a clean labelled
stream into a poisoned one, supporting the three attack styles the paper
lists: label flipping, feature obfuscation (shifting/noising), and data
denial (dropping selected samples).  Deterministic per seed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import AttackError
from repro.sim.rng import SeededRNG

#: A labelled sample: (feature tuple, label in {+1, -1}).
Sample = tuple

_MODES = ("label_flip", "feature_shift", "denial")


class PoisoningCampaign:
    """Deterministic poisoning of a labelled sample stream."""

    def __init__(
        self,
        rate: float,
        mode: str = "label_flip",
        seed: int = 0,
        feature_shift: float = 5.0,
        target_label: Optional[int] = None,
    ):
        """``rate`` is the fraction of samples touched.  ``target_label``
        restricts poisoning to samples of one true label (a targeted
        attack); ``None`` poisons indiscriminately."""
        if not 0.0 <= rate <= 1.0:
            raise AttackError("poison rate must be in [0, 1]")
        if mode not in _MODES:
            raise AttackError(f"mode must be one of {_MODES}, got {mode!r}")
        self.rate = rate
        self.mode = mode
        self.feature_shift = feature_shift
        self.target_label = target_label
        self._rng = SeededRNG(seed, f"poison/{mode}")
        self.poisoned_indices: list[int] = []

    def apply(self, samples: Sequence[Sample]) -> list[Sample]:
        """Return the poisoned stream; indices touched land in
        :attr:`poisoned_indices` (ground truth for defense scoring)."""
        self.poisoned_indices = []
        poisoned: list[Sample] = []
        for index, (features, label) in enumerate(samples):
            eligible = self.target_label is None or label == self.target_label
            if not (eligible and self._rng.chance(self.rate)):
                poisoned.append((features, label))
                continue
            self.poisoned_indices.append(index)
            if self.mode == "label_flip":
                poisoned.append((features, -label))
            elif self.mode == "feature_shift":
                direction = -label  # push features across the boundary
                shifted = tuple(
                    float(x) + direction * self.feature_shift for x in features
                )
                poisoned.append((shifted, label))
            else:  # denial: the sample never reaches the learner
                continue
        return poisoned

    @property
    def poisoned_count(self) -> int:
        return len(self.poisoned_indices)

    def describe(self) -> dict:
        return {
            "mode": self.mode,
            "rate": self.rate,
            "target_label": self.target_label,
            "poisoned": self.poisoned_count,
        }
