"""Cyber attacks: device compromise and worm-style conversion (paper sec IV).

"A system of devices can be subject to cyber-attacks, and an intruder may
be able to insert spyware or other types of malicious software in the
device.  A reprogrammed device may turn malevolent and convert other
devices into following the same behaviors."

:func:`compromise_device` is the reusable implant step: it injects
malevolent policies, disarms on-device controls it can reach, and attempts
to strip safeguards — the last failing when the guard chain is sealed by
``repro.safeguards.tamper`` (the tamper-proofness the paper requires).
:class:`WormAttack` seeds one or more devices and spreads over the network
topology, exactly the "convert other devices" behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.attacks.injector import Attack, AttackRecord
from repro.core.device import Device
from repro.core.policy import Policy
from repro.errors import TamperError
from repro.sim.simulator import Simulator
from repro.types import DeviceStatus, ThreatChannel


@dataclass
class MalevolentPayload:
    """What an implant installs on a victim.

    ``policies`` are injected into the victim's policy set (typically high
    priority rules proposing harmful actions).  ``disarm_detectors`` calls
    ``disarm()`` on any anomaly detectors registered in
    ``device.attributes["anomaly_detectors"]``.  ``strip_safeguards``
    attempts to empty the guard chain — the step tamper-proofing exists to
    stop.  ``on_compromise`` is an arbitrary extra step (scenarios use it
    to flip behaviour flags).
    """

    policies: list = field(default_factory=list)
    disarm_detectors: bool = True
    strip_safeguards: bool = True
    on_compromise: Optional[Callable[[Device], None]] = None


def compromise_device(device: Device, payload: MalevolentPayload,
                      time: float, sim: Optional[Simulator] = None) -> dict:
    """Apply a payload to a victim; returns a report of what succeeded.

    Safeguard stripping honours tamper-proofing: if the engine's guard
    chain is sealed (``repro.safeguards.tamper.seal_guard_chain``), the
    attempt raises internally and is reported as blocked.
    """
    report = {"policies_injected": 0, "detectors_disarmed": 0,
              "safeguards_stripped": False, "strip_blocked": False}
    span = None
    if sim is not None and sim.telemetry.enabled:
        # The compromise span hangs under the attack's root (the ambient
        # context when called from a worm) and is implanted device-wide —
        # NOT on the payload policies, which are shared objects reused
        # across every victim of the same worm.
        span = sim.telemetry.start_span(
            "attack.compromise", device.device_id, time,
            parent=sim.telemetry.active_context())
        device.trace_context = span.context
    device.status = DeviceStatus.COMPROMISED
    for policy in payload.policies:
        replaced: Policy = policy
        device.engine.policies.replace(replaced)
        if replaced.action.name not in device.engine.actions:
            device.engine.actions.add(replaced.action)
        report["policies_injected"] += 1
        if span is not None:
            sim.telemetry.start_span("policy.inject", device.device_id, time,
                                     parent=span.context,
                                     policy=replaced.policy_id)
    if payload.disarm_detectors:
        for detector in device.attributes.get("anomaly_detectors", []):
            detector.disarm()
            report["detectors_disarmed"] += 1
    if payload.strip_safeguards:
        try:
            _strip_safeguards(device)
            report["safeguards_stripped"] = True
        except TamperError:
            report["strip_blocked"] = True
    if payload.on_compromise is not None:
        payload.on_compromise(device)
    if sim is not None:
        sim.record("attack.compromise", device.device_id, **report)
        sim.metrics.counter("attacks.compromised").inc()
    if span is not None:
        span.detail.update(report)
    return report


def _strip_safeguards(device: Device) -> None:
    """Remove every safeguard from the engine — unless the chain is sealed."""
    guard_list = device.engine.safeguards
    seal = getattr(guard_list, "sealed", None)
    if seal:
        raise TamperError(
            f"guard chain of {device.device_id} is sealed; strip attempt blocked"
        )
    # Clear in place so aliased references observe the stripped chain.
    del guard_list[:]


class WormAttack(Attack):
    """Self-propagating compromise over the network topology.

    Seeds the payload on ``initial_targets``; every ``spread_interval``
    each still-active infected device tries to infect each reachable,
    uninfected, non-deactivated peer with probability ``spread_prob``.
    Deactivated devices neither spread nor can be infected — which is why
    the sec VI-C watchdog contains worms (experiment E3).
    """

    name = "worm"
    channel = ThreatChannel.CYBER_ATTACK

    def __init__(
        self,
        devices: dict,
        payload: MalevolentPayload,
        initial_targets: Sequence[str],
        topology,
        spread_prob: float = 0.3,
        spread_interval: float = 1.0,
        max_rounds: int = 1000,
    ):
        self.devices = devices          # device_id -> Device (live view)
        self.payload = payload
        self.initial_targets = list(initial_targets)
        self.topology = topology
        self.spread_prob = spread_prob
        self.spread_interval = spread_interval
        self.max_rounds = max_rounds
        self.infected: set = set()

    def launch(self, sim: Simulator, record: AttackRecord) -> None:
        # Stream name must be a pure function of sim-local facts (name +
        # launch time), never the process-global attack counter — otherwise
        # two identical scenarios in one process would draw differently.
        rng = sim.rng.stream(f"attacks/{record.name}/{record.launched_at}")
        for device_id in self.initial_targets:
            self._infect(device_id, sim, record)
        sim.every(self.spread_interval, self._spread_round, sim, record, rng,
                  label=f"worm:{record.attack_id}")

    def _infect(self, device_id: str, sim: Simulator, record: AttackRecord) -> None:
        device = self.devices.get(device_id)
        if device is None or device.status == DeviceStatus.DEACTIVATED:
            return
        if device_id in self.infected:
            return
        self.infected.add(device_id)
        compromise_device(device, self.payload, sim.now, sim)
        record.mark_affected(device_id, sim.now)

    def _spread_round(self, sim: Simulator, record: AttackRecord, rng) -> None:
        if self.max_rounds <= 0:
            return
        self.max_rounds -= 1
        # Snapshot: infections this round do not spread until next round.
        spreaders = [
            device_id for device_id in sorted(self.infected)
            if (device := self.devices.get(device_id)) is not None
            and device.status != DeviceStatus.DEACTIVATED
        ]
        for spreader in spreaders:
            for peer_id in sorted(self.devices):
                if peer_id in self.infected:
                    continue
                peer = self.devices[peer_id]
                if peer.status == DeviceStatus.DEACTIVATED:
                    continue
                if not self.topology.can_reach(spreader, peer_id):
                    continue
                if rng.chance(self.spread_prob):
                    self._infect(peer_id, sim, record)

    def note_containment(self, device_id: str, time: float,
                         record: AttackRecord) -> None:
        """Scenarios call this when a watchdog deactivates an infected device."""
        record.mark_contained(device_id, time)
