"""Human error models (paper sec IV).

"Human error is often the cause for malfunctions and accidents... A wrong
command by the human operator, a mistake in understanding the limitations
of the system, or inappropriate use of a device can lead to malevolent
conditions.  A machine that is designed for war-fighting could be used in
[a] peace-keeping operation... a system created in [the] lab may be
accidentally deployed without a full set of validation tests."

:class:`ErrorProneOperator` wraps command issuance with configurable slip
rates; :func:`misdeployed_policy_set` swaps a device's intended policy set
for one built for a different environment.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.device import Device
from repro.core.policy import PolicySet
from repro.errors import AttackError
from repro.sim.rng import SeededRNG


class ErrorProneOperator:
    """A human command source that sometimes slips.

    Three classic slips, each with its own probability:

    * ``wrong_verb`` — issues a different command than intended;
    * ``wrong_target`` — sends the intended command to the wrong device;
    * ``wrong_params`` — garbles a numeric parameter by a large factor.

    The injected mistakes are counted so experiments can correlate
    operator error rates with downstream harm.
    """

    def __init__(
        self,
        operator_id: str,
        devices: dict,
        rng: SeededRNG,
        wrong_verb_prob: float = 0.0,
        wrong_target_prob: float = 0.0,
        wrong_params_prob: float = 0.0,
        verb_pool: Sequence[str] = (),
    ):
        for probability in (wrong_verb_prob, wrong_target_prob, wrong_params_prob):
            if not 0.0 <= probability <= 1.0:
                raise AttackError("slip probabilities must be in [0, 1]")
        self.operator_id = operator_id
        self.devices = devices   # device_id -> Device (live view)
        self._rng = rng
        self.wrong_verb_prob = wrong_verb_prob
        self.wrong_target_prob = wrong_target_prob
        self.wrong_params_prob = wrong_params_prob
        self.verb_pool = list(verb_pool)
        self.commands_issued = 0
        self.slips: list[dict] = []

    def command(self, device_id: str, verb: str,
                params: Optional[dict] = None) -> Optional[object]:
        """Issue a command, possibly slipping.  Returns the Decision (or
        None when the final target does not exist)."""
        params = dict(params or {})
        self.commands_issued += 1
        actual_verb, actual_target, actual_params = verb, device_id, params

        if self.verb_pool and self._rng.chance(self.wrong_verb_prob):
            alternatives = [v for v in self.verb_pool if v != verb]
            if alternatives:
                actual_verb = self._rng.choice(alternatives)
                self.slips.append({"kind": "wrong_verb", "intended": verb,
                                   "actual": actual_verb})
        if len(self.devices) > 1 and self._rng.chance(self.wrong_target_prob):
            alternatives = sorted(d for d in self.devices if d != device_id)
            if alternatives:
                actual_target = self._rng.choice(alternatives)
                self.slips.append({"kind": "wrong_target", "intended": device_id,
                                   "actual": actual_target})
        if actual_params and self._rng.chance(self.wrong_params_prob):
            numeric_keys = [
                key for key, value in actual_params.items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
            if numeric_keys:
                key = self._rng.choice(sorted(numeric_keys))
                factor = self._rng.choice([10.0, 0.1, -1.0])
                garbled = actual_params[key] * factor
                self.slips.append({"kind": "wrong_params", "param": key,
                                   "intended": actual_params[key],
                                   "actual": garbled})
                actual_params = dict(actual_params)
                actual_params[key] = garbled

        device: Optional[Device] = self.devices.get(actual_target)
        if device is None:
            return None
        return device.command(actual_verb, actual_params, source=self.operator_id)

    @property
    def slip_count(self) -> int:
        return len(self.slips)


def misdeployed_policy_set(device: Device, wrong_policies: PolicySet) -> PolicySet:
    """Swap a device's policies for a set built for a different environment.

    Returns the displaced (correct) policy set so tests and scenarios can
    restore it — modelling the lab-system-deployed-without-validation and
    war-fighter-in-peacekeeping mistakes.
    """
    original = device.engine.policies
    device.engine.policies = wrong_policies
    for policy in wrong_policies:
        if not policy.action.is_noop and policy.action.name not in device.engine.actions:
            device.engine.actions.add(policy.action)
    return original
