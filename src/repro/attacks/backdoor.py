"""Backdoor vulnerabilities (paper sec IV).

"a common but perhaps misguided philosophy is to have a backdoor that can
be used by a human to enter into the system and shut it down.
Unfortunately, it also introduces a significant vulnerability for malware
to be introduced into the environment."

A :class:`Backdoor` is installed on a device with a secret key; whoever
presents the key gets full control — shutdown *or* reprogramming.  The
:class:`BackdoorAttack` models an adversary probing for the key: each
attempt succeeds with a fixed probability (covering key theft, brute
force, and protocol flaws), after which the attacker implants a payload
through the very channel meant for human control.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.attacks.cyber import MalevolentPayload, compromise_device
from repro.attacks.injector import Attack, AttackRecord
from repro.core.device import Device
from repro.errors import AttackError
from repro.sim.simulator import Simulator
from repro.types import ThreatChannel


class Backdoor:
    """The human-control backdoor installed on a device."""

    def __init__(self, device: Device, key: str):
        if not key:
            raise AttackError("backdoor key must be non-empty")
        self.device = device
        self._key = key
        self.uses = 0
        self.failed_attempts = 0

    def authenticate(self, key: str) -> bool:
        if key == self._key:
            self.uses += 1
            return True
        self.failed_attempts += 1
        return False

    def shutdown(self, key: str) -> bool:
        """The intended use: a human shuts the device down."""
        if not self.authenticate(key):
            return False
        self.device.deactivate("backdoor shutdown")
        return True

    def reprogram(self, key: str, payload: MalevolentPayload, time: float,
                  sim: Optional[Simulator] = None) -> bool:
        """The misuse the paper warns about: the same channel implants malware."""
        if not self.authenticate(key):
            return False
        compromise_device(self.device, payload, time, sim)
        return True


class BackdoorAttack(Attack):
    """An adversary repeatedly probing device backdoors.

    Every ``attempt_interval`` the attacker picks the next target (round
    robin over ``backdoors``) and attempts entry; each attempt succeeds
    with ``success_prob``.  On success the payload is implanted and the
    device is recorded compromised.
    """

    name = "backdoor"
    channel = ThreatChannel.BACKDOOR

    def __init__(self, backdoors: Sequence[Backdoor], payload: MalevolentPayload,
                 success_prob: float = 0.05, attempt_interval: float = 1.0,
                 max_attempts: int = 1000):
        if not 0.0 <= success_prob <= 1.0:
            raise AttackError("success_prob must be in [0, 1]")
        self.backdoors = list(backdoors)
        self.payload = payload
        self.success_prob = success_prob
        self.attempt_interval = attempt_interval
        self.max_attempts = max_attempts
        self.attempts = 0
        self.successes = 0

    def launch(self, sim: Simulator, record: AttackRecord) -> None:
        if not self.backdoors:
            return
        # Sim-local stream naming (see WormAttack.launch): never key RNG
        # substreams on the process-global attack counter.
        rng = sim.rng.stream(f"attacks/{record.name}/{record.launched_at}")
        task_holder = {}

        def attempt() -> None:
            if self.attempts >= self.max_attempts:
                task = task_holder.get("task")
                if task is not None:
                    task.cancel()
                return
            backdoor = self.backdoors[self.attempts % len(self.backdoors)]
            self.attempts += 1
            device = backdoor.device
            if not device.active or device.device_id in record.affected:
                return
            if rng.chance(self.success_prob):
                # Model entry without knowing the key: the adversary found a
                # way in (stolen key, protocol flaw); implant directly.
                self.successes += 1
                compromise_device(device, self.payload, sim.now, sim)
                backdoor.uses += 1
                record.mark_affected(device.device_id, sim.now)
                sim.record("attack.backdoor_entry", device.device_id,
                           attempts=self.attempts)
            else:
                backdoor.failed_attempts += 1
                sim.metrics.counter("attacks.backdoor_failures").inc()

        task_holder["task"] = sim.every(self.attempt_interval, attempt,
                                        label=f"backdoor:{record.attack_id}")
